// Package netmap renders mapping-round snapshots the way the paper's mmon
// visualizes the network (Fig. 11): a consistent map shows every node
// hanging off its switch port; a damaged map — e.g. after the
// controller-address corruption of §4.3.3 — shows missing nodes, duplicate
// identities, and an "INCONSISTENT" verdict that varies across rounds.
package netmap

import (
	"fmt"
	"strings"

	"netfi/internal/myrinet"
)

// Render draws one snapshot as ASCII.
func Render(s *myrinet.Snapshot) string {
	if s == nil {
		return "(no map)\n"
	}
	var b strings.Builder
	verdict := "CONSISTENT"
	if s.Inconsistent {
		verdict = "INCONSISTENT"
	}
	fmt.Fprintf(&b, "network map @ %v  round=%d  mapper=%#x  [%s]\n", s.At, s.Round, uint64(s.Mapper), verdict)
	fmt.Fprintf(&b, "  switch\n")
	for _, e := range s.Entries {
		port := "local"
		if len(e.Route) > 0 && e.Route[0]&myrinet.RouteSwitchFlag != 0 {
			port = fmt.Sprintf("p%d", e.Route[0]&myrinet.RoutePortMask)
		}
		fmt.Fprintf(&b, "  +-- %-5s %v  id=%#x\n", port, e.MAC, uint64(e.ID))
	}
	if len(s.Entries) == 0 {
		b.WriteString("  (empty)\n")
	}
	return b.String()
}

// Diff summarizes what changed between two snapshots: nodes lost, nodes
// appearing, consistency transitions. It is the core of the before/after
// contrast in Fig. 11.
func Diff(before, after *myrinet.Snapshot) string {
	var b strings.Builder
	if before == nil || after == nil {
		return "(missing snapshot)\n"
	}
	lost, gained := 0, 0
	for _, e := range before.Entries {
		if !after.Has(e.MAC) {
			fmt.Fprintf(&b, "lost:   %v\n", e.MAC)
			lost++
		}
	}
	for _, e := range after.Entries {
		if !before.Has(e.MAC) {
			fmt.Fprintf(&b, "gained: %v\n", e.MAC)
			gained++
		}
	}
	if before.Inconsistent != after.Inconsistent {
		fmt.Fprintf(&b, "consistency: %v -> %v\n", !before.Inconsistent, !after.Inconsistent)
	}
	if lost == 0 && gained == 0 && before.Inconsistent == after.Inconsistent {
		b.WriteString("(no change)\n")
	}
	return b.String()
}
