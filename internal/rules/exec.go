package rules

import "math/bits"

// Executor runs a compiled Program over a symbol stream, one 9-bit symbol
// per Step call, with zero allocations in the hot path. It also owns the
// per-rule trigger state (match/fire counters, once latches, the armed
// window) so that re-arming is a Reset away, like reloading the register
// file of the single-pattern engine.
type Executor struct {
	p *Program

	dfa   int32
	lanes []uint64 // per-rule active-state bitsets (lane mode)

	symbols   uint64 // symbols consumed since Reset
	onceFired uint64
	matches   []uint64
	fires     []uint64

	// quiet is the start-state skip set: bit s is set when consuming symbol
	// s from the start state provably returns to the start state with no
	// match. Runs of quiet symbols can be consumed in bulk (StepBatch) with
	// only the symbol clock advancing.
	quiet [SymbolSpace / 64]uint64
}

// NewExecutor returns an armed executor.
func NewExecutor(p *Program) *Executor {
	e := &Executor{
		p:       p,
		matches: make([]uint64, len(p.rules)),
		fires:   make([]uint64, len(p.rules)),
	}
	if !p.UsesDFA() {
		e.lanes = make([]uint64, len(p.rules))
	}
	e.buildQuiet()
	e.Reset()
	return e
}

// buildQuiet computes the start-state skip set once per program. A symbol is
// quiet when no rule's automaton leaves its start configuration on it: for
// the DFA that is a self-transition of state 0 with an empty accept set; for
// NFA lanes it means no lane's start state has a consuming transition the
// symbol satisfies (the start's self-loop is what keeps matching unanchored,
// so "stays at {start}" is exact, not conservative).
func (e *Executor) buildQuiet() {
	if e.p.dfaTable != nil {
		if e.p.dfaAccept[0] != 0 {
			return // degenerate: start already accepts; never skip
		}
		for s := 0; s < SymbolSpace; s++ {
			if e.p.dfaTable[s] == 0 {
				e.quiet[s>>6] |= 1 << uint(s&63)
			}
		}
		return
	}
	for s := 0; s < SymbolSpace; s++ {
		sym := uint16(s)
		ok := true
		for r := range e.p.lanes {
			lane := &e.p.lanes[r]
			if lane.accept&1 != 0 {
				ok = false
				break
			}
			st := &lane.states[0]
			if st.anyNext >= 0 || (st.matchNext >= 0 && (sym^st.cmp)&st.mask == 0) {
				ok = false
				break
			}
		}
		if ok {
			e.quiet[s>>6] |= 1 << uint(s&63)
		}
	}
}

// InStart reports whether the automaton is in its start configuration, i.e.
// no partial match is in flight. Quiet symbols consumed here provably leave
// the executor unchanged except for the symbol clock.
func (e *Executor) InStart() bool {
	if e.p.dfaTable != nil {
		return e.dfa == 0
	}
	for _, set := range e.lanes {
		if set != 1 {
			return false
		}
	}
	return true
}

// QuietSymbols exposes the start-state skip set as a 512-bit bitmap (bit s
// of word s/64 = symbol s is quiet). Callers that pre-classify symbols — the
// injector's batch scanner — fold it into their own anchor maps.
func (e *Executor) QuietSymbols() *[SymbolSpace / 64]uint64 { return &e.quiet }

// SkipQuiet advances the symbol clock over n symbols without touching
// automaton state. Only valid when InStart() holds and every skipped symbol
// is in QuietSymbols; callers own that proof.
func (e *Executor) SkipQuiet(n int) { e.symbols += uint64(n) }

// StepBatch consumes a run of symbols and returns the OR of the fire masks
// the per-symbol Step calls would have produced. While the automaton sits in
// its start configuration the program's prefilter screens the run: spans it
// proves unable to complete any rule's prefix are consumed in bulk, and the
// exact per-symbol path wakes only around prefilter hits (rewound by the
// maximum prefix length) and held-back partials at the run's end. Without a
// prefilter, runs of quiet symbols are consumed in bulk instead; either way
// the per-symbol path stays engaged until the automaton returns to start.
func (e *Executor) StepBatch(syms []uint16) uint64 {
	var fired uint64
	i, n := 0, len(syms)
	pf := e.p.prefilter
	for i < n {
		if e.InStart() {
			if pf != nil {
				clean, hold := pf.ScanClean(syms[i:])
				if clean > 0 {
					e.symbols += uint64(clean)
					i += clean
				}
				for end := i + hold; i < end; i++ {
					fired |= e.Step(syms[i])
				}
				continue
			}
			j := i
			for j < n {
				s := syms[j] & SymbolMask
				if e.quiet[s>>6]&(1<<uint(s&63)) == 0 {
					break
				}
				j++
			}
			if j > i {
				e.symbols += uint64(j - i)
				i = j
				continue
			}
		}
		fired |= e.Step(syms[i])
		i++
	}
	return fired
}

// Program returns the compiled rule set.
func (e *Executor) Program() *Program { return e.p }

// Reset re-arms the executor: automaton state, once latches, the window
// clock, and the per-rule counters all return to their power-on state.
func (e *Executor) Reset() {
	e.dfa = 0
	for i := range e.lanes {
		e.lanes[i] = 1 // the always-active unanchored start
	}
	e.symbols = 0
	e.onceFired = 0
	for i := range e.matches {
		e.matches[i] = 0
		e.fires[i] = 0
	}
}

// Step consumes one symbol and returns the bitmask of rules firing on it
// (bit i = rule i in compile order), after mode gating. Match counters
// advance even when the mode gates the fire.
func (e *Executor) Step(sym uint16) uint64 {
	sym &= SymbolMask
	e.symbols++
	var matched uint64
	if e.p.dfaTable != nil {
		e.dfa = e.p.dfaTable[int(e.dfa)*SymbolSpace+int(sym)]
		matched = e.p.dfaAccept[e.dfa]
	} else {
		for r := range e.p.lanes {
			lane := &e.p.lanes[r]
			var next uint64 = 1
			for set := e.lanes[r]; set != 0; set &= set - 1 {
				i := bits.TrailingZeros64(set)
				st := &lane.states[i]
				if st.selfAny {
					next |= 1 << uint(i)
				}
				if st.anyNext >= 0 {
					next |= 1 << uint(st.anyNext)
				}
				if st.matchNext >= 0 && (sym^st.cmp)&st.mask == 0 {
					next |= 1 << uint(st.matchNext)
				}
			}
			e.lanes[r] = next
			if next&lane.accept != 0 {
				matched |= 1 << uint(r)
			}
		}
	}
	if matched == 0 {
		return 0
	}
	var fired uint64
	for set := matched; set != 0; set &= set - 1 {
		i := bits.TrailingZeros64(set)
		e.matches[i]++
		r := &e.p.rules[i]
		fire := false
		switch r.Mode {
		case ModeOn:
			fire = true
		case ModeOnce:
			if e.onceFired&(1<<uint(i)) == 0 {
				fire = true
				e.onceFired |= 1 << uint(i)
			}
		case ModeAfterN:
			fire = e.matches[i] > r.N
		case ModeWindow:
			fire = e.symbols <= r.N
		}
		if fire {
			e.fires[i]++
			fired |= 1 << uint(i)
		}
	}
	return fired
}

// Counters reports rule i's cumulative matches and (mode-gated) fires since
// the last Reset.
func (e *Executor) Counters(i int) (matches, fires uint64) {
	return e.matches[i], e.fires[i]
}

// Symbols reports how many symbols the executor has consumed since Reset.
func (e *Executor) Symbols() uint64 { return e.symbols }
