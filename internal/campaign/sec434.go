package campaign

import (
	"fmt"
	"strings"

	"netfi/internal/myrinet"
	"netfi/internal/sim"
)

// Sec434Result reproduces the §4.3.4 UDP corruption experiment: a swap of
// bytes 16 bits apart satisfies the one's-complement checksum, so the
// corrupted message is passed to the application ("Have a lot of fun" →
// "veHa a lot of fun") — an ACTIVE fault; any other corruption fails the
// checksum and the packet is dropped.
type Sec434Result struct {
	// EvadingDelivered: the swapped message reached the application.
	EvadingDelivered bool
	// EvadingPayload is what the application received.
	EvadingPayload string
	// NonEvadingDropped: the non-aligned corruption was caught by the
	// UDP checksum.
	NonEvadingDropped bool
}

// Sec434Options parameterizes the experiment.
type Sec434Options struct {
	Seed int64
	// Workers runs the two independent halves concurrently; <= 1 is
	// serial. Results are identical either way.
	Workers int
}

const sec434Message = "Have a lot of fun"

// sec434Evading runs the checksum-evading swap. "Have" (48 61 76 65)
// becomes "veHa" (76 65 48 61): bytes 0<->2 and 1<->3 swap — 16 bits apart,
// invisible to the one's-complement sum. The Myrinet CRC-8 is recomputed by
// the injector (the real-time trigger), so only the end-to-end checksum
// stands between the corruption and the application — and it passes.
func sec434Evading(seed int64) (delivered bool, payload string) {
	tb := NewTestbed(TestbedConfig{Seed: seed})
	tap := tb.TapNode()
	src := tb.Nodes[1]
	var got []byte
	if _, err := tap.Bind(loadDstPort, func(_ myrinet.MAC, _ uint16, data []byte) {
		got = append([]byte(nil), data...)
	}); err != nil {
		panic(err)
	}
	tb.Configure(
		"DIR R",
		"COMPARE 48 61 76 65",         // "Have"
		"CORRUPT REPLACE 76 65 48 61", // "veHa"
		"CRC ON",
		"MODE ONCE",
	)
	src.SendUDP(tap.MAC(), 9000, loadDstPort, []byte(sec434Message))
	tb.K.RunFor(5 * sim.Millisecond)
	return string(got) == "veHa a lot of fun", string(got)
}

// sec434NonEvading runs the control: a corruption that does not satisfy the
// checksum ('H' → 'X') is detected and the packet dropped.
func sec434NonEvading(seed int64) bool {
	tb := NewTestbed(TestbedConfig{Seed: seed})
	tap := tb.TapNode()
	src := tb.Nodes[1]
	delivered := false
	if _, err := tap.Bind(loadDstPort, func(myrinet.MAC, uint16, []byte) {
		delivered = true
	}); err != nil {
		panic(err)
	}
	tb.Configure(
		"DIR R",
		"COMPARE 48 61 76 65",
		"CORRUPT REPLACE 58 -- -- --", // 'X'
		"CRC ON",
		"MODE ONCE",
	)
	src.SendUDP(tap.MAC(), 9000, loadDstPort, []byte(sec434Message))
	tb.K.RunFor(5 * sim.Millisecond)
	return !delivered && tap.Stats().ChecksumDrops == 1
}

// RunSec434 executes both halves of the experiment on separate testbeds.
func RunSec434(opts Sec434Options) Sec434Result {
	parts := RunTrials(2, opts.Workers, func(i int) Sec434Result {
		var r Sec434Result
		if i == 0 {
			r.EvadingDelivered, r.EvadingPayload = sec434Evading(opts.Seed)
		} else {
			r.NonEvadingDropped = sec434NonEvading(opts.Seed + 1)
		}
		return r
	})
	res := parts[0]
	res.NonEvadingDropped = parts[1].NonEvadingDropped
	return res
}

// FormatSec434 renders the result against the paper's observations.
func FormatSec434(r Sec434Result) string {
	check := func(b bool) string {
		if b {
			return "reproduced"
		}
		return "NOT reproduced"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "16-bit-aligned swap evades the checksum: %s\n", check(r.EvadingDelivered))
	fmt.Fprintf(&b, "  application received: %q (paper: \"veHa a lot of fun\")\n", r.EvadingPayload)
	fmt.Fprintf(&b, "non-aligned corruption dropped by checksum: %s\n", check(r.NonEvadingDropped))
	return b.String()
}
