package campaign

import (
	"strings"
	"testing"

	"netfi/internal/sim"
	"netfi/internal/topo"
)

// runFabricFingerprint builds, runs, and fingerprints one fabric config.
func runFabricFingerprint(t *testing.T, cfg FabricConfig) (string, *FabricTestbed) {
	t.Helper()
	tb, err := NewFabricTestbed(cfg)
	if err != nil {
		t.Fatalf("NewFabricTestbed: %v", err)
	}
	defer tb.Close()
	tb.Run()
	return fabricFingerprint(tb), tb
}

// TestFabricShardEquivalence is the small-fabric equivalence gate: a
// 2-switch/4-host fabric run sharded at 1, 2, and 4 shards must produce a
// byte-identical full-state fingerprint — STAT counters on every switch
// port and interface, link totals, flow records, per-host receive event
// logs, and the coordinator's clock and processed-event counters — across
// 20 seeds and both workloads. Shards=1 is the single-kernel path (one
// sim.Kernel executes everything, every delivery scheduled directly); 2
// and 4 split the fabric across real parallel kernels with adaptive
// horizons and barrier exchange, 4 finer than the switch count.
func TestFabricShardEquivalence(t *testing.T) {
	for _, workload := range []FabricWorkload{WorkloadFlood, WorkloadPingPong} {
		for seed := int64(0); seed < 20; seed++ {
			var base string
			var baseTB *FabricTestbed
			var multiExchanged uint64
			for _, shards := range []int{1, 2, 4} {
				cfg := FabricConfig{
					Topo:     topo.Config{Switches: 2, Hosts: 4, Shards: shards, Seed: seed},
					Workload: workload,
					Packets:  5,
					Payload:  48,
					Gap:      2 * sim.Microsecond,
					Record:   true,
				}
				fp, tb := runFabricFingerprint(t, cfg)
				if shards == 1 {
					base, baseTB = fp, tb
					if len(tb.F.Kernels) != 1 {
						t.Fatalf("shards=1 built %d kernels", len(tb.F.Kernels))
					}
					continue
				}
				if len(tb.F.Kernels) != shards {
					t.Fatalf("shards=%d built %d kernels", shards, len(tb.F.Kernels))
				}
				multiExchanged += tb.F.Group.Exchanged()
				if fp != base {
					t.Fatalf("workload=%s seed=%d shards=%d fingerprint diverges from single-kernel run:\n%s",
						workload, seed, shards, diffFirstLine(base, fp))
				}
			}
			// The gate must gate something: traffic flowed, and the
			// sharded runs moved deliveries across real barriers (the
			// single-kernel run schedules everything directly, so its
			// exchange count is legitimately zero).
			sent, delivered, _ := baseTB.Totals()
			if sent == 0 || delivered == 0 {
				t.Fatalf("workload=%s seed=%d: no traffic (sent=%d delivered=%d)", workload, seed, sent, delivered)
			}
			if multiExchanged == 0 {
				t.Fatalf("workload=%s seed=%d: no deliveries crossed the exchange in any sharded run", workload, seed)
			}
		}
	}
}

// TestFabricClosEquivalence extends the gate to a multi-stage Clos: 16
// switches (2 spines, 14 leaves), 56 hosts, sharded 1 vs 5 vs 16.
func TestFabricClosEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 7} {
		var base string
		for _, shards := range []int{1, 5, 16} {
			cfg := FabricConfig{
				Topo:    topo.Config{Switches: 16, Hosts: 56, Shards: shards, Seed: seed},
				Packets: 3,
				Payload: 64,
				Gap:     3 * sim.Microsecond,
				Record:  true,
			}
			fp, _ := runFabricFingerprint(t, cfg)
			if shards == 1 {
				base = fp
			} else if fp != base {
				t.Fatalf("seed=%d shards=%d fingerprint diverges:\n%s", seed, shards, diffFirstLine(base, fp))
			}
		}
	}
}

// diffFirstLine locates the first differing line of two fingerprints so a
// gate failure points at the diverging counter instead of dumping both.
func diffFirstLine(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return "line " + al[i] + "\n  vs " + bl[i]
		}
	}
	return "fingerprints differ in length"
}

func TestFabricDeliversAll(t *testing.T) {
	res, err := RunFabric(FabricConfig{
		Topo:    topo.Config{Switches: 16, Hosts: 64, Shards: 4, Seed: 3},
		Packets: 4,
		Gap:     3 * sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Drained {
		t.Fatal("fabric did not run to quiescence")
	}
	if res.Sent != 64*4 || res.Delivered != res.Sent {
		t.Fatalf("sent=%d delivered=%d, want 256/256", res.Sent, res.Delivered)
	}
	if res.Symbols == 0 || res.Windows == 0 || res.Exchanged == 0 {
		t.Fatalf("degenerate run: symbols=%d windows=%d exchanged=%d", res.Symbols, res.Windows, res.Exchanged)
	}
	if len(res.ShardEvents) != 4 {
		t.Fatalf("%d shard event counts, want 4", len(res.ShardEvents))
	}
	for s, n := range res.ShardEvents {
		if n == 0 {
			t.Fatalf("shard %d executed no events — partition left it idle", s)
		}
	}
}

func TestFabricPingPongCompletes(t *testing.T) {
	tb, err := NewFabricTestbed(FabricConfig{
		Topo:     topo.Config{Switches: 2, Hosts: 4, Shards: 2, Seed: 11},
		Workload: WorkloadPingPong,
		Packets:  6,
		Gap:      2 * sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	if !tb.Run() {
		t.Fatal("ping-pong fabric did not drain")
	}
	// Each of the 2 pairs plays 6 round trips = 12 one-way messages.
	sent, delivered, _ := tb.Totals()
	if sent != 24 || delivered != 24 {
		t.Fatalf("sent=%d delivered=%d, want 24/24", sent, delivered)
	}
}

// TestFabricFormat pins the CLI report's shape (not its numbers).
func TestFabricFormat(t *testing.T) {
	res, err := RunFabric(FabricConfig{
		Topo:    topo.Config{Switches: 2, Hosts: 4, Shards: 2, Seed: 1},
		Packets: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := FormatFabric(res)
	for _, want := range []string{"fabric: 2 switches, 4 hosts, 2 shards", "drained=true", "symbols/s", "shard events:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
