package myrinet

import "netfi/internal/sim"

// Link and protocol timing, matching the paper's numbers.
const (
	// CharPeriod is the serialization time of one 9-bit character at the
	// paper's 80 MB/s per-direction rate: "at 80 MB/s, a character period
	// is roughly 12.5 ns" (§4.3.1). The full-duplex pair gives the quoted
	// 1.28 Gb/s aggregate (2 x 640 Mb/s).
	CharPeriod = 12_500 * sim.Picosecond

	// ShortTimeoutChars is the short-period timeout of the flow-control
	// logic: "The timeout counter is set to 16 character periods"
	// (§4.3.1). A stopped sender that hears nothing for this long acts as
	// if it received GO.
	ShortTimeoutChars = 16

	// ShortTimeout is the short-period timeout as a duration (200 ns).
	ShortTimeout = ShortTimeoutChars * CharPeriod

	// LongTimeoutChars is the long-period timeout: "roughly four million
	// character transmission periods (~50 ms at a data rate of 80 MB/s)"
	// (§4.3.1). A sending host blocked for this long terminates the
	// packet and consumes its unsent remainder.
	LongTimeoutChars = 4_000_000

	// LongTimeout is the long-period timeout as a duration (50 ms).
	LongTimeout = LongTimeoutChars * CharPeriod

	// StopRefreshChars paces re-assertion of STOP while a slack buffer
	// stays above its low watermark; it must be well under
	// ShortTimeoutChars or the remote sender would time out back to GO
	// between refreshes.
	StopRefreshChars = 8

	// StopRefresh is the refresh interval as a duration (100 ns).
	StopRefresh = StopRefreshChars * CharPeriod

	// txChunkChars bounds how many characters a transmitter emits between
	// checks of its flow-control gate. Smaller chunks react to STOP
	// faster but cost more events; 32 characters (400 ns) is far inside
	// every slack buffer's absorption margin.
	txChunkChars = 32
)

// Recovery-layer deadlines. The paper's hardware stops at the long-period
// timeout; real deployments add the watchdogs below so a wedged path is torn
// down instead of holding the network hostage. All are deliberately longer
// than LongTimeout: the paper-modeled timeouts get the first chance to
// recover, and the reset layer only acts when they could not.
const (
	// DefaultBlockedTimeout is the switch-port blocked-packet deadline: a
	// cut-through packet that makes no forwarding progress for this long
	// (stuck waiting for a held output, or mid-stream with its tail lost)
	// is torn down to break head-of-line deadlocks (1.5x LongTimeout,
	// 75 ms).
	DefaultBlockedTimeout = 6_000_000 * CharPeriod

	// DefaultStopWatchdog is the transmit-side deadline: a sender held
	// continuously in STOP for this long (the remote keeps refreshing STOP
	// because its buffer never drains — a lost GO downstream, a wedged
	// consumer) declares the link dead and resets it (2x LongTimeout,
	// 100 ms).
	DefaultStopWatchdog = 8_000_000 * CharPeriod
)

// Slack-buffer geometry (Fig. 9). The buffer must absorb everything in
// flight after STOP is asserted: a transmit chunk (32 chars) plus the STOP's
// round-trip, so the gap between high watermark and capacity is generous.
const (
	// DefaultSlackCapacity is the buffer size in characters. The margin
	// above the high watermark absorbs everything in flight after STOP:
	// a transmit chunk, the STOP's round trip, and the extra latency of
	// an inserted fault injector ("can be simply modeled by a longer
	// cable", §1 — the slack margin is what makes that true).
	DefaultSlackCapacity = 512
	// DefaultSlackHigh is the high watermark: crossing it issues STOP.
	DefaultSlackHigh = 256
	// DefaultSlackLow is the low watermark: falling to it issues GO.
	DefaultSlackLow = 96
)
