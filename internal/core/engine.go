// Package core implements the paper's primary contribution: the
// reconfigurable in-path fault injector. The datapath is the FIFO injector
// of Figs. 2-3 — a circular queue the intercepted character stream flows
// through, a shift-register compare window with per-position "don't care"
// masks, and corrupt logic (toggle or replace under a corrupt mask) that
// overwrites matched characters in the FIFO before they are retransmitted.
// Around the datapath sit the paper's control entities: the command decoder
// and output generator FSMs reachable over a serial link (command.go), the
// capture ring for data monitoring (capture.go), per-identifier statistics
// (monitor.go), and the device assembly that splices into a live cable
// (device.go).
//
// The paper's hardware compares 32-bit segments of the data stream; this
// implementation generalizes the segment to a window of four link characters
// (4 x 9 bits including the Data/Control flag, which the FPGA also sees on
// its parallel interface), so control symbols such as STOP/GO/GAP are
// matchable exactly as the §4.3.1 campaign requires.
package core

import (
	"fmt"

	"netfi/internal/bitstream"
	"netfi/internal/phy"
	"netfi/internal/rules"
)

// WindowSize is the compare window in characters — the paper's 32-bit
// compare segment.
const WindowSize = 4

// MatchMode gates the trigger (§3.3, "Match mode").
type MatchMode int

// Match modes. On triggers on every match; Once triggers on the first match
// and ignores all subsequent ones until re-armed; Off disables the trigger.
const (
	MatchOff MatchMode = iota
	MatchOn
	MatchOnce
)

// String returns the mode mnemonic.
func (m MatchMode) String() string {
	switch m {
	case MatchOn:
		return "ON"
	case MatchOnce:
		return "ONCE"
	default:
		return "OFF"
	}
}

// CorruptMode selects how matched data is damaged (§3.3, "Corrupt mode").
type CorruptMode int

// Corrupt modes. Toggle flips the bits set in the corrupt data vector;
// Replace substitutes corrupt data bits selected by the corrupt mask.
const (
	CorruptToggle CorruptMode = iota
	CorruptReplace
)

// String returns the mode mnemonic.
func (m CorruptMode) String() string {
	if m == CorruptReplace {
		return "REPLACE"
	}
	return "TOGGLE"
}

// CharMask selects which of a character's 9 bits participate in a compare
// or replace; the low 8 bits cover the data path and bit 8 the D/C flag.
type CharMask uint16

// Common masks.
const (
	// MaskNone is a fully "don't care" position.
	MaskNone CharMask = 0x000
	// MaskFull matches all 9 bits (data + D/C flag).
	MaskFull CharMask = 0x1FF
	// MaskData matches the 8 data bits, ignoring the D/C flag.
	MaskData CharMask = 0x0FF
)

// Config is the injector's register file — the "injector control inputs" of
// Fig. 3. The zero value is a disabled injector that passes data through
// untouched.
type Config struct {
	// Match gates the trigger.
	Match MatchMode
	// CompareData is the pattern looked for in the compare window,
	// oldest character first.
	CompareData [WindowSize]phy.Character
	// CompareMask holds per-position don't-care masks: a zero mask makes
	// the position match anything.
	CompareMask [WindowSize]CharMask
	// Corrupt selects toggle or replace.
	Corrupt CorruptMode
	// CorruptData is the error vector: bits to flip (toggle) or the
	// replacement character (replace).
	CorruptData [WindowSize]phy.Character
	// CorruptMask selects, in replace mode, which bits of CorruptData
	// substitute the original; other bits pass unchanged.
	CorruptMask [WindowSize]CharMask
	// RecomputeCRC, when set, replaces the last data character before
	// the next GAP with the recomputed Myrinet CRC-8 of the (corrupted)
	// retransmitted packet — the real-time triggering mechanism of §3.2.
	RecomputeCRC bool
}

// fifoEntry is one FIFO slot: the character plus a corrupted flag used by
// the CRC-recompute logic to know the packet in flight was injected, and a
// dropped flag set by rule-engine drop actions — dropped slots are skipped
// (not retransmitted) when they reach the FIFO head.
type fifoEntry struct {
	ch        phy.Character
	corrupted bool
	dropped   bool
}

// Engine is one direction's FIFO injector. It is clocked per character:
// every input character performs the odd-cycle push/pull (Fig. 2) and the
// even-cycle compare/inject (Fig. 3).
//
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	cfg Config

	fifo  []fifoEntry // ring
	head  int
	count int
	slack int // characters held back; the injector's pipeline depth

	// window is the compare shift register. Like the hardware, it holds
	// the original incoming characters (corruption overwrites only the
	// FIFO copy) and starts idle-filled, so single-character patterns
	// match from the first push. pos locates each character's FIFO slot,
	// or -1 for idle fill.
	window [WindowSize]winEntry

	onceDone  bool
	injectNow bool

	// Rule-engine path (internal/rules): an optional compiled multi-rule
	// trigger program evaluated per character beside the legacy
	// single-pattern compare. Nil ruleExec disables the path.
	ruleList []rules.Rule
	ruleProg *rules.Program
	ruleExec *rules.Executor

	// CRC recompute state (output side).
	runningCRC      byte
	packetCorrupted bool

	// Batch-path state (batch.go): taint counts FIFO slots carrying a
	// corrupted or dropped flag (bulk pops are only legal at zero), and the
	// skip plan caches the anchor bitmap derived from the register file and
	// rule set, rebuilt lazily after any of them change.
	taint      int
	batchDirty bool
	plan       batchPlan

	// Statistics (the §3.2 statistics-gathering feature).
	chars      uint64
	matches    uint64
	injections uint64
	dropped    uint64
	resetsSeen uint64

	// onInject, when set, fires once per injection event alongside the
	// capture trigger; campaigns use it to timestamp the first fault on
	// the wire. Nil on the pass-through path, so it costs nothing there.
	onInject func()

	capture *CaptureRing

	// Reusable output scratch. Process and Flush keep separate buffers so
	// the common `append(e.Process(x), e.Flush()...)` composition stays
	// valid: each call's result survives until that same method runs again.
	procOut  []phy.Character
	flushOut []phy.Character
}

// winEntry is one compare-register position: the original character and its
// FIFO slot (-1 when the position still holds idle fill).
type winEntry struct {
	ch  phy.Character
	pos int
}

// DefaultSlackChars reproduces footnote 5: three pipeline clocks plus a few
// 32-bit segments held in the FIFO, about 250 ns at 640 Mb/s — 20 character
// periods at 12.5 ns each.
const DefaultSlackChars = 20

// NewEngine returns an engine holding back slack characters of pipeline.
// slack must be at least WindowSize so matched characters are still in the
// FIFO when corrupted, and at least 2 so the CRC-recompute lookahead works.
func NewEngine(slack int) *Engine {
	if slack < WindowSize {
		panic(fmt.Sprintf("core: slack %d below window size %d", slack, WindowSize))
	}
	e := &Engine{
		fifo:       make([]fifoEntry, nextPow2(slack*4)),
		slack:      slack,
		capture:    NewCaptureRing(DefaultCapturePre, DefaultCapturePost),
		batchDirty: true,
	}
	e.resetWindow()
	return e
}

// resetWindow idle-fills the compare register (the state of a quiet link).
func (e *Engine) resetWindow() {
	for i := range e.window {
		e.window[i] = winEntry{ch: phy.ControlChar(0x00), pos: -1}
	}
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Configure loads the register file. Loading re-arms Once mode and clears a
// pending inject-now.
func (e *Engine) Configure(cfg Config) {
	e.cfg = cfg
	e.onceDone = false
	e.injectNow = false
	e.batchDirty = true
}

// Config returns the current register file.
func (e *Engine) Config() Config { return e.cfg }

// SetMatchMode changes only the match mode, re-arming Once.
func (e *Engine) SetMatchMode(m MatchMode) {
	e.cfg.Match = m
	e.onceDone = false
	e.batchDirty = true
}

// InjectNow requests an unconditional injection on the next even clock
// cycle, exercising the current corrupt configuration on one window.
func (e *Engine) InjectNow() { e.injectNow = true }

// Capture exposes the data-monitoring ring.
func (e *Engine) Capture() *CaptureRing { return e.capture }

// Stats reports characters seen, compare matches, and injections performed.
func (e *Engine) Stats() (chars, matches, injections uint64) {
	return e.chars, e.matches, e.injections
}

// SetInjectionHook registers fn to run once per injection event (nil
// removes it). Monitors use it to learn injection times without polling.
func (e *Engine) SetInjectionHook(fn func()) { e.onInject = fn }

// DroppedChars reports how many characters rule drop actions deleted from
// the retransmitted stream.
func (e *Engine) DroppedChars() uint64 { return e.dropped }

// LinkResetCode is the control-character value the link layer uses for its
// RESET recovery symbol (myrinet.SymReset; asserted equal by test to avoid
// an import cycle). The injector counts RESETs crossing its tap so a
// monitoring console can watch recovery activity from the serial port.
const LinkResetCode = 0x05

// ResetsSeen reports how many link RESET control characters have crossed
// the tap in this direction.
func (e *Engine) ResetsSeen() uint64 { return e.resetsSeen }

// Process clocks the engine over a burst of input characters and returns
// the characters released downstream. The engine holds back its slack, so
// output lags input by exactly the pipeline depth. The returned slice is a
// reused scratch buffer, valid until the next Process call: this is the
// per-symbol hot path of every campaign, and it must not allocate.
func (e *Engine) Process(chars []phy.Character) []phy.Character {
	out := e.procOut[:0]
	for _, c := range chars {
		out = e.stepOne(c, out)
	}
	e.procOut = out
	return out
}

// stepOne clocks the engine over a single character: the per-symbol
// reference path that ProcessBatch falls back to around candidate anchors.
func (e *Engine) stepOne(c phy.Character, out []phy.Character) []phy.Character {
	// Odd cycle: push + shift (the FIFO always has room — the drain
	// below keeps count at the slack level).
	e.push(c)
	// Even cycle: compare result available; corrupt/drop in FIFO.
	e.evenCycle()
	// Steady-state pull so output rate tracks input rate; dropped
	// slots leave the FIFO without being retransmitted.
	for e.count > e.slack {
		if ch, ok := e.popOne(); ok {
			out = append(out, ch)
		}
	}
	return out
}

// Flush drains the held-back pipeline (the characters that idle fill would
// push out once the link goes quiet) and idle-fills the compare register.
// Like Process, it returns a reused scratch buffer, valid until the next
// Flush call.
func (e *Engine) Flush() []phy.Character {
	out := e.flushOut[:0]
	for e.count > 0 {
		if ch, ok := e.popOne(); ok {
			out = append(out, ch)
		}
	}
	e.resetWindow()
	e.flushOut = out
	return out
}

// Pending reports how many characters sit in the pipeline.
func (e *Engine) Pending() int { return e.count }

// ---- datapath ----

func (e *Engine) push(c phy.Character) {
	e.chars++
	if !c.IsData() && c.Byte() == LinkResetCode {
		e.resetsSeen++
	}
	if e.count == len(e.fifo) {
		// Cannot happen in normal operation: Process always pops down
		// to slack first. Guard against misuse.
		panic("core: FIFO overflow")
	}
	pos := (e.head + e.count) & (len(e.fifo) - 1)
	e.fifo[pos] = fifoEntry{ch: c}
	e.count++
	// Shift the original character into the compare register and record
	// its FIFO slot so the even cycle can overwrite the queued copy.
	copy(e.window[:], e.window[1:])
	e.window[WindowSize-1] = winEntry{ch: c, pos: pos}
	e.capture.Observe(c)
}

// popOne retires the FIFO head. ok is false when the slot was deleted by a
// drop action; deletion marks the packet corrupted so CRC recompute covers
// it like any other injection.
func (e *Engine) popOne() (phy.Character, bool) {
	entry := e.fifo[e.head]
	e.head = (e.head + 1) & (len(e.fifo) - 1)
	e.count--

	if entry.corrupted || entry.dropped {
		e.taint--
	}
	if entry.dropped {
		e.packetCorrupted = true
		return 0, false
	}
	c := entry.ch
	if entry.corrupted {
		e.packetCorrupted = true
	}
	if !c.IsData() {
		// GAP (or any control symbol) resets per-packet CRC state.
		e.runningCRC = 0
		e.packetCorrupted = false
		return c, true
	}
	if e.cfg.RecomputeCRC && e.packetCorrupted && e.nextIsGap() {
		// This is the trailing CRC position: substitute the CRC of the
		// retransmitted (corrupted) packet, "recalculating the correct
		// CRC value to transmit immediately before the end-of-frame
		// character" (§3.2).
		c = phy.DataChar(e.runningCRC)
		return c, true
	}
	e.runningCRC = bitstream.CRC8Update(e.runningCRC, c.Byte())
	return c, true
}

// nextIsGap peeks whether the next retransmitted FIFO character ends the
// packet, skipping dropped slots. The pipeline slack guarantees at least one
// character of lookahead whenever pop is allowed.
func (e *Engine) nextIsGap() bool {
	for i := 0; i < e.count; i++ {
		entry := e.fifo[(e.head+i)%len(e.fifo)]
		if entry.dropped {
			continue
		}
		c := entry.ch
		return !c.IsData() && c.Byte() == 0x0C // Myrinet GAP
	}
	return false
}

// evenCycle evaluates the compare and performs the injection.
func (e *Engine) evenCycle() {
	// Rule-engine path: step the compiled automaton on the character just
	// pushed and apply any fired rules' actions to the FIFO.
	if e.ruleExec != nil {
		if fired := e.ruleExec.Step(uint16(e.window[WindowSize-1].ch) & rules.SymbolMask); fired != 0 {
			e.applyRuleActions(fired)
		}
	}
	trigger := e.injectNow
	e.injectNow = false
	if !trigger && e.compare() {
		e.matches++
		switch e.cfg.Match {
		case MatchOn:
			trigger = true
		case MatchOnce:
			if !e.onceDone {
				trigger = true
				e.onceDone = true
			}
		}
	}
	if !trigger {
		return
	}
	e.injections++
	if e.onInject != nil {
		e.onInject()
	}
	for i := 0; i < WindowSize; i++ {
		if e.window[i].pos < 0 {
			continue // idle fill or already retransmitted: nothing to hit
		}
		entry := &e.fifo[e.window[i].pos]
		orig := entry.ch
		switch e.cfg.Corrupt {
		case CorruptToggle:
			entry.ch = orig ^ e.cfg.CorruptData[i]&phy.Character(MaskFull)
		case CorruptReplace:
			m := phy.Character(e.cfg.CorruptMask[i])
			entry.ch = orig&^m | e.cfg.CorruptData[i]&m
		}
		if entry.ch != orig && !entry.corrupted {
			if !entry.dropped {
				e.taint++
			}
			entry.corrupted = true
		}
	}
	e.capture.MarkInjection()
}

// compare evaluates the compare register (original stream data) against the
// compare data under the masks.
func (e *Engine) compare() bool {
	for i := 0; i < WindowSize; i++ {
		if (e.window[i].ch^e.cfg.CompareData[i])&phy.Character(e.cfg.CompareMask[i]) != 0 {
			return false
		}
	}
	return true
}
