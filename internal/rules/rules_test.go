package rules

import (
	"testing"
)

// dataSym mirrors phy.DataChar for test readability: bit 8 is the D/C flag.
func dataSym(b byte) uint16 { return 0x100 | uint16(b) }

// ctrlSym mirrors phy.ControlChar.
func ctrlSym(b byte) uint16 { return uint16(b) }

// seqRule builds a ModeOn capture rule matching the given full-mask data
// bytes in sequence.
func seqRule(id int, bs ...byte) Rule {
	r := Rule{ID: id, Mode: ModeOn, Action: ActionCapture}
	for _, b := range bs {
		r.Steps = append(r.Steps, Step{Sym: dataSym(b), Mask: SymbolMask})
	}
	return r
}

// run feeds stream to a fresh executor and returns the fire masks per
// position.
func run(t *testing.T, p *Program, stream []uint16) []uint64 {
	t.Helper()
	e := NewExecutor(p)
	out := make([]uint64, len(stream))
	for i, s := range stream {
		out[i] = e.Step(s)
	}
	return out
}

// compileBoth compiles the set as a DFA and as forced lanes.
func compileBoth(t *testing.T, rs []Rule) (*Program, *Program) {
	t.Helper()
	dfa, err := Compile(rs, Options{})
	if err != nil {
		t.Fatalf("compile dfa: %v", err)
	}
	if !dfa.UsesDFA() {
		t.Fatalf("default compile fell back to lanes: %+v", dfa.Stats())
	}
	lanes, err := Compile(rs, Options{ForceLanes: true})
	if err != nil {
		t.Fatalf("compile lanes: %v", err)
	}
	if lanes.UsesDFA() {
		t.Fatal("ForceLanes produced a DFA")
	}
	return dfa, lanes
}

func TestSingleRuleSequence(t *testing.T) {
	rs := []Rule{seqRule(1, 0x18, 0x19)}
	stream := []uint16{dataSym(0x18), dataSym(0x18), dataSym(0x19), dataSym(0x19), dataSym(0x18)}
	want := []uint64{0, 0, 1, 0, 0}
	for _, p := range func() []*Program { a, b := compileBoth(t, rs); return []*Program{a, b} }() {
		got := run(t, p, stream)
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s pos %d: fired %#x, want %#x", p.Stats().Mode, i, got[i], want[i])
			}
		}
	}
}

func TestMaskAndControlSymbols(t *testing.T) {
	// Match the GAP control symbol regardless of data bits 4..7.
	rs := []Rule{{ID: 1, Mode: ModeOn, Action: ActionCapture,
		Steps: []Step{{Sym: ctrlSym(0x0C), Mask: 0x10F}}}}
	dfa, lanes := compileBoth(t, rs)
	stream := []uint16{ctrlSym(0x0C), ctrlSym(0x7C), dataSym(0x0C), ctrlSym(0x0D)}
	want := []uint64{1, 1, 0, 0} // D/C flag and low nibble compared, bits 4..7 not
	for _, p := range []*Program{dfa, lanes} {
		got := run(t, p, stream)
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s pos %d: fired %#x, want %#x", p.Stats().Mode, i, got[i], want[i])
			}
		}
	}
}

func TestBoundedAndUnboundedGaps(t *testing.T) {
	rs := []Rule{
		{ID: 1, Mode: ModeOn, Action: ActionCapture, Steps: []Step{
			{Sym: dataSym(0xA0), Mask: SymbolMask},
			{Sym: dataSym(0xB0), Mask: SymbolMask, Gap: 2},
		}},
		{ID: 2, Mode: ModeOn, Action: ActionCapture, Steps: []Step{
			{Sym: dataSym(0xA0), Mask: SymbolMask},
			{Sym: dataSym(0xC0), Mask: SymbolMask, Gap: GapUnbounded},
		}},
	}
	dfa, lanes := compileBoth(t, rs)
	stream := []uint16{
		dataSym(0xA0), dataSym(0x01), dataSym(0x02), dataSym(0xB0), // gap 2: fires
		dataSym(0x03), dataSym(0x04), dataSym(0x05), dataSym(0xC0), // unbounded: fires
		dataSym(0xB0), // gap 2 exceeded (5 chars since 0xA0): silent
	}
	want := []uint64{0, 0, 0, 1, 0, 0, 0, 2, 0}
	for _, p := range []*Program{dfa, lanes} {
		got := run(t, p, stream)
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s pos %d: fired %#x, want %#x", p.Stats().Mode, i, got[i], want[i])
			}
		}
	}
}

func TestModeGating(t *testing.T) {
	mk := func(m Mode, n uint64) []Rule {
		r := seqRule(1, 0x42)
		r.Mode = m
		r.N = n
		return []Rule{r}
	}
	stream := []uint16{dataSym(0x42), dataSym(0x42), dataSym(0x42), dataSym(0x42)}
	cases := []struct {
		name string
		rs   []Rule
		want []uint64
	}{
		{"off", mk(ModeOff, 0), []uint64{0, 0, 0, 0}},
		{"on", mk(ModeOn, 0), []uint64{1, 1, 1, 1}},
		{"once", mk(ModeOnce, 0), []uint64{1, 0, 0, 0}},
		{"after2", mk(ModeAfterN, 2), []uint64{0, 0, 1, 1}},
		{"window2", mk(ModeWindow, 2), []uint64{1, 1, 0, 0}},
	}
	for _, c := range cases {
		p, err := Compile(c.rs, Options{})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		e := NewExecutor(p)
		for i, s := range stream {
			if got := e.Step(s); got != c.want[i] {
				t.Errorf("%s pos %d: fired %#x, want %#x", c.name, i, got, c.want[i])
			}
		}
		if m, _ := e.Counters(0); m != 4 {
			t.Errorf("%s: matches=%d, want 4 (gating must not hide matches)", c.name, m)
		}
	}
}

func TestResetRearms(t *testing.T) {
	r := seqRule(1, 0x42)
	r.Mode = ModeOnce
	p, err := Compile([]Rule{r}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := NewExecutor(p)
	if e.Step(dataSym(0x42)) != 1 || e.Step(dataSym(0x42)) != 0 {
		t.Fatal("once gating broken")
	}
	e.Reset()
	if e.Step(dataSym(0x42)) != 1 {
		t.Error("Reset did not re-arm once mode")
	}
	if m, f := e.Counters(0); m != 1 || f != 1 {
		t.Errorf("Reset did not clear counters: %d/%d", m, f)
	}
}

func TestBudgetFallbackToLanes(t *testing.T) {
	// 16 distinct 6-step patterns comfortably exceed a 4-state budget.
	var rs []Rule
	for i := 0; i < 16; i++ {
		rs = append(rs, seqRule(i, byte(i), byte(i+1), byte(i+2), byte(i+3), byte(i+4), byte(i+5)))
	}
	p, err := Compile(rs, Options{MaxDFAStates: 4})
	if err != nil {
		t.Fatal(err)
	}
	if p.UsesDFA() {
		t.Fatal("4-state budget should force lane mode")
	}
	if st := p.Stats(); st.Mode != "nfa-lanes" || st.NFAStates == 0 {
		t.Errorf("stats = %+v", st)
	}
	// Lanes still match correctly.
	e := NewExecutor(p)
	var fired uint64
	for _, b := range []byte{3, 4, 5, 6, 7, 8} {
		fired = e.Step(dataSym(b))
	}
	if fired != 1<<3 {
		t.Errorf("fired %#x, want rule 3 only", fired)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Rule{
		{ID: 1, Action: ActionCapture},                                                               // no steps
		{ID: 2, Action: ActionCapture, Steps: []Step{{Gap: 5}}},                                      // gap on first step
		{ID: 3, Action: ActionCapture, Steps: []Step{{Sym: 0x200}}},                                  // symbol out of space
		{ID: 4, Action: ActionCapture, Steps: []Step{{}, {Gap: MaxGap + 1}}},                         // gap too large
		{ID: 5, Action: ActionToggle, Steps: []Step{{}}},                                             // toggle without vector
		{ID: 6, Action: ActionReplace, Steps: []Step{{}}, CorruptData: []uint16{1}},                  // replace without mask
		{ID: 7, Action: ActionDrop, Steps: []Step{{}}},                                               // drop without count
		{ID: 8, Action: ActionCapture, Steps: make([]Step, MaxSteps+1)},                              // too many steps
		{ID: 9, Action: Action(99), Steps: []Step{{}}},                                               // unknown action
		{ID: 10, Mode: Mode(99), Action: ActionCapture, Steps: []Step{{}}},                           // unknown mode
		{ID: 11, Action: ActionToggle, Steps: []Step{{}}, CorruptData: make([]uint16, MaxCorrupt+1)}, // vector too long
	}
	for _, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("rule %d: Validate accepted invalid rule", r.ID)
		}
		if _, err := Compile([]Rule{r}, Options{}); err == nil {
			t.Errorf("rule %d: Compile accepted invalid rule", r.ID)
		}
	}
	if _, err := Compile(nil, Options{}); err == nil {
		t.Error("Compile accepted an empty set")
	}
	if _, err := Compile(make([]Rule, MaxRules+1), Options{}); err == nil {
		t.Error("Compile accepted more than MaxRules rules")
	}
}

func TestReferenceMatcherBasics(t *testing.T) {
	r := Rule{ID: 1, Mode: ModeOn, Action: ActionCapture, Steps: []Step{
		{Sym: dataSym(0x10), Mask: SymbolMask},
		{Sym: dataSym(0x20), Mask: SymbolMask, Gap: 1},
	}}
	stream := []uint16{dataSym(0x10), dataSym(0x99), dataSym(0x20)}
	if !MatchesAt(&r, stream, 2) {
		t.Error("gap-1 match not found by reference")
	}
	if MatchesAt(&r, stream, 1) || MatchesAt(&r, stream, 5) {
		t.Error("reference matched where it must not")
	}
}

func TestStepZeroAlloc(t *testing.T) {
	rs := []Rule{seqRule(1, 1, 2, 3), seqRule(2, 4, 5, 6)}
	for _, force := range []bool{false, true} {
		p, err := Compile(rs, Options{ForceLanes: force})
		if err != nil {
			t.Fatal(err)
		}
		e := NewExecutor(p)
		allocs := testing.AllocsPerRun(100, func() {
			for b := byte(0); b < 32; b++ {
				e.Step(dataSym(b))
			}
		})
		if allocs != 0 {
			t.Errorf("ForceLanes=%v: Step allocates (%.1f allocs/run)", force, allocs)
		}
	}
}
