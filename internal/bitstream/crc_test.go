package bitstream

import (
	"bytes"
	"hash/crc32"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCRC8KnownVectors(t *testing.T) {
	// CRC-8/ATM-HEC ("123456789" -> 0xF4 is the standard check value for
	// poly 0x07, init 0, no reflection).
	cases := []struct {
		in   string
		want byte
	}{
		{"", 0x00},
		{"123456789", 0xF4},
		{"\x00", 0x00},
		{"\xFF", 0xF3},
	}
	for _, c := range cases {
		if got := CRC8([]byte(c.in)); got != c.want {
			t.Errorf("CRC8(%q) = %#02x, want %#02x", c.in, got, c.want)
		}
	}
}

func TestCRC8UpdateMatchesWholeBuffer(t *testing.T) {
	data := []byte("myrinet packet body with route bytes")
	var crc byte
	for _, b := range data {
		crc = CRC8Update(crc, b)
	}
	if want := CRC8(data); crc != want {
		t.Errorf("incremental CRC8 = %#02x, want %#02x", crc, want)
	}
}

func TestCRC8DetectsSingleBitErrors(t *testing.T) {
	data := []byte{0x81, 0x00, 0x04, 0xDE, 0xAD, 0xBE, 0xEF}
	good := CRC8(data)
	for i := range data {
		for bit := 0; bit < 8; bit++ {
			mutated := append([]byte(nil), data...)
			mutated[i] ^= 1 << bit
			if CRC8(mutated) == good {
				t.Errorf("single-bit flip at byte %d bit %d not detected", i, bit)
			}
		}
	}
}

// Property: CRC-8 is linear over GF(2): crc(a^b) == crc(a)^crc(b) for
// equal-length inputs (with zero init, no final xor).
func TestCRC8Linearity(t *testing.T) {
	prop := func(a, b []byte) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		a, b = a[:n], b[:n]
		x := make([]byte, n)
		for i := range x {
			x[i] = a[i] ^ b[i]
		}
		return CRC8(x) == CRC8(a)^CRC8(b)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestCRC32MatchesStdlib(t *testing.T) {
	prop := func(data []byte) bool {
		return CRC32(data) == crc32.ChecksumIEEE(data)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// crc8Bitwise is an independent bit-serial oracle for CRC-8/ATM-HEC
// (poly 0x07, MSB-first, zero init): no tables, just the shift register the
// hardware implements.
func crc8Bitwise(data []byte) byte {
	var crc byte
	for _, b := range data {
		crc ^= b
		for bit := 0; bit < 8; bit++ {
			if crc&0x80 != 0 {
				crc = crc<<1 ^ 0x07
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// crc32Bitwise is an independent bit-serial oracle for the reflected IEEE
// CRC-32 (poly 0xEDB88320, init/final all-ones).
func crc32Bitwise(data []byte) uint32 {
	crc := ^uint32(0)
	for _, b := range data {
		crc ^= uint32(b)
		for bit := 0; bit < 8; bit++ {
			if crc&1 != 0 {
				crc = crc>>1 ^ 0xEDB88320
			} else {
				crc >>= 1
			}
		}
	}
	return ^crc
}

// TestCRCTablesAgainstOracles is the table-driven cross-check demanded by
// the slicing rewrite: every table entry and every sliced kernel must agree
// with hash/crc32 (for CRC-32) and a bit-serial shift register (for both).
func TestCRCTablesAgainstOracles(t *testing.T) {
	stdTable := crc32.MakeTable(crc32.IEEE)
	for b := 0; b < 256; b++ {
		if crc32Table[b] != stdTable[b] {
			t.Fatalf("crc32Table[%#02x] = %#08x, want stdlib %#08x", b, crc32Table[b], stdTable[b])
		}
		if got, want := crc8Table[b], crc8Bitwise([]byte{byte(b)}); got != want {
			t.Fatalf("crc8Table[%#02x] = %#02x, want bit-serial %#02x", b, got, want)
		}
	}
	cases := [][]byte{
		nil,
		{0x00},
		{0xFF},
		[]byte("123456789"),
		[]byte("Have a lot of fun"),
		bytes.Repeat([]byte{0xA5, 0x5A}, 100),
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 64; i++ {
		buf := make([]byte, rng.Intn(300))
		rng.Read(buf)
		cases = append(cases, buf)
	}
	for _, data := range cases {
		if got, want := CRC32(data), crc32.ChecksumIEEE(data); got != want {
			t.Errorf("CRC32(%d bytes) = %#08x, want stdlib %#08x", len(data), got, want)
		}
		if got, want := CRC32(data), crc32Bitwise(data); got != want {
			t.Errorf("CRC32(%d bytes) = %#08x, want bit-serial %#08x", len(data), got, want)
		}
		if got, want := CRC8(data), crc8Bitwise(data); got != want {
			t.Errorf("CRC8(%d bytes) = %#02x, want bit-serial %#02x", len(data), got, want)
		}
	}
}

// The sliced 4-byte update must compose exactly like four serial updates.
func TestCRC8Update4MatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		crc := byte(rng.Intn(256))
		b0, b1, b2, b3 := byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))
		want := CRC8Update(CRC8Update(CRC8Update(CRC8Update(crc, b0), b1), b2), b3)
		if got := CRC8Update4(crc, b0, b1, b2, b3); got != want {
			t.Fatalf("CRC8Update4(%#02x, %#02x %#02x %#02x %#02x) = %#02x, want %#02x",
				crc, b0, b1, b2, b3, got, want)
		}
	}
}

// The sliced 8-byte update must compose exactly like eight serial updates.
func TestCRC8Update8MatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var b [8]byte
	for i := 0; i < 2000; i++ {
		crc := byte(rng.Intn(256))
		rng.Read(b[:])
		want := crc
		for _, x := range b {
			want = CRC8Update(want, x)
		}
		got := CRC8Update8(crc, b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7])
		if got != want {
			t.Fatalf("CRC8Update8(%#02x, % 02x) = %#02x, want %#02x", crc, b, got, want)
		}
	}
}

func TestCRC8ZerosMatchesLoop(t *testing.T) {
	ns := []int{0, 1, 2, 3, 7, 8, 63, 64, 127, 128, 255, 256, 257, 1000, 4096}
	for _, n := range ns {
		for _, start := range []byte{0x00, 0x01, 0x80, 0xF4, 0xFF} {
			want := start
			for i := 0; i < n; i++ {
				want = CRC8Update(want, 0)
			}
			if got := CRC8Zeros(start, n); got != want {
				t.Errorf("CRC8Zeros(%#02x, %d) = %#02x, want %#02x", start, n, got, want)
			}
		}
	}
}

func TestChecksum16KnownVector(t *testing.T) {
	// Classic example from RFC 1071 discussions: verify by summing back in.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	sum := Checksum16(data)
	withSum := append(append([]byte(nil), data...), byte(sum>>8), byte(sum))
	if !VerifyChecksum16(withSum) {
		t.Errorf("Checksum16 round trip failed: sum=%#04x", sum)
	}
}

func TestChecksum16OddLength(t *testing.T) {
	data := []byte{0xAB, 0xCD, 0xEF}
	sum := Checksum16(data)
	// Appending the checksum after padding semantics: verify manually.
	var s uint32 = 0xABCD + 0xEF00 + uint32(sum)
	for s>>16 != 0 {
		s = s&0xFFFF + s>>16
	}
	if uint16(s) != 0xFFFF {
		t.Errorf("odd-length checksum does not verify: %#04x", s)
	}
}

// Property: swapping two bytes exactly 16 bits apart is invisible to the
// one's-complement checksum. This is precisely the fault the paper's §4.3.4
// injection exploits ("Have a lot of fun" -> "veHa a lot of fun").
func TestChecksum16BlindToAlignedSwaps(t *testing.T) {
	prop := func(data []byte, idx uint8) bool {
		if len(data) < 4 {
			return true
		}
		i := int(idx) % (len(data) - 2)
		// Swap data[i] with data[i+2]: same column in the 16-bit sum.
		mutated := append([]byte(nil), data...)
		mutated[i], mutated[i+2] = mutated[i+2], mutated[i]
		return Checksum16(mutated) == Checksum16(data)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestChecksum16HaveALotOfFun(t *testing.T) {
	orig := []byte("Have a lot of fun")
	swapped := []byte("veHa a lot of fun")
	// "Have" -> "veHa" swaps bytes 0<->2 and 1<->3, both 16 bits apart.
	if Checksum16(orig) != Checksum16(swapped) {
		t.Error("checksum detected the 16-bit-aligned swap; the paper's fault should be invisible")
	}
	// A swap that is NOT 16-bit aligned is detected.
	detected := append([]byte(nil), orig...)
	detected[0], detected[1] = detected[1], detected[0]
	if Checksum16(detected) == Checksum16(orig) && !bytes.Equal(detected, orig) {
		t.Error("adjacent-byte swap unexpectedly evaded the checksum")
	}
}

func TestChecksum16DetectsSingleBitErrors(t *testing.T) {
	data := []byte("UDP payload under test 1234")
	good := Checksum16(data)
	for i := range data {
		mutated := append([]byte(nil), data...)
		mutated[i] ^= 0x40
		if Checksum16(mutated) == good {
			t.Errorf("bit error at byte %d not detected", i)
		}
	}
}
